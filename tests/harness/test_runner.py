"""Tests for the cached, parallel simulation session and result cache."""

import json

import numpy as np
import pytest

from repro.core.accelerator import AcceleratorSimulator, WorkloadResult
from repro.core.config import baseline_paper_config, fpraker_paper_config
from repro.core.workload import PhaseWorkload
from repro.fp.bfloat16 import bf16_quantize
from repro.harness.cache import ResultCache
from repro.harness.experiments import run_fig11_speedup, run_fig14_phases
from repro.harness.runner import SimRequest, SimulationSession, canonical_key

# Reduced sampling keeps each cold simulation fast; every test builds
# its sessions with the same parameters so results are comparable.
QUICK = dict(sample_strips=2, sample_steps=8)

MODELS = ("NCF", "SNLI")


def _quick_session(**overrides):
    return SimulationSession(**{**QUICK, **overrides})


def _simulated_result(seed=0):
    rng = np.random.default_rng(seed)
    values_a = bf16_quantize(rng.normal(0, 1, 2048))
    values_a[rng.random(2048) < 0.4] = 0.0
    workload = PhaseWorkload(
        model="m", layer="l", phase="AxW", macs=500_000, reduction=256,
        tensor_a="A", tensor_b="W",
        values_a=values_a,
        values_b=bf16_quantize(rng.normal(0, 1, 2048)),
        input_bytes=1e6, output_bytes=2e5,
    )
    return AcceleratorSimulator(**QUICK).simulate_workload([workload])


class TestCanonicalKey:
    def test_none_config_equals_paper_config(self):
        r1 = SimRequest.make("NCF", None)
        r2 = SimRequest.make("NCF", fpraker_paper_config())
        assert canonical_key(r1, 4, 32, 1234) == canonical_key(r2, 4, 32, 1234)

    def test_distinguishes_every_axis(self):
        base = SimRequest.make("NCF")
        variants = [
            SimRequest.make("SNLI"),
            SimRequest.make("NCF", baseline_paper_config()),
            SimRequest.make("NCF", progress=0.7),
            SimRequest.make("NCF", seed=3),
            SimRequest.make("NCF", acc_profile={"fc": 6}),
            SimRequest.make("NCF", phases=("AxW",)),
        ]
        key = canonical_key(base, 4, 32, 1234)
        for variant in variants:
            assert canonical_key(variant, 4, 32, 1234) != key

    def test_sampling_parameters_in_key(self):
        request = SimRequest.make("NCF")
        assert canonical_key(request, 4, 32, 1234) != canonical_key(
            request, 2, 32, 1234
        )

    def test_acc_profile_order_insensitive(self):
        r1 = SimRequest.make("NCF", acc_profile={"a": 6, "b": 8})
        r2 = SimRequest.make("NCF", acc_profile={"b": 8, "a": 6})
        assert canonical_key(r1, 4, 32, 1234) == canonical_key(r2, 4, 32, 1234)


class TestResultSerialization:
    def test_workload_result_round_trip_exact(self):
        result = _simulated_result()
        back = WorkloadResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert back.name == result.name and back.model == result.model
        assert back.cycles == result.cycles  # exact, not approx
        assert back.macs == result.macs
        assert back.energy_total().total == result.energy_total().total
        c1, c2 = back.counters_total(), result.counters_total()
        assert c1.lanes.to_dict() == c2.lanes.to_dict()
        assert c1.terms.to_dict() == c2.terms.to_dict()
        assert back.phases[0].serial_tensor == result.phases[0].serial_tensor

    def test_result_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _simulated_result()
        cache.store("key1", result)
        loaded = cache.load("key1")
        assert loaded is not None
        assert loaded.cycles == result.cycles
        assert cache.load("other-key") is None

    def test_result_cache_rejects_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _simulated_result()
        path = cache.store("key1", result)
        path.write_text("{not json")
        assert cache.load("key1") is None


class TestSessionMemoization:
    def test_each_unique_simulation_runs_once(self):
        session = _quick_session()
        first = session.simulate("NCF")
        second = session.simulate("NCF")
        base = session.baseline("NCF")
        assert first is second
        assert base is not first
        assert session.stats.simulations == 2
        assert session.stats.hits == 1
        assert session.unique_simulations == 2

    def test_cache_hit_equals_cold_values(self):
        warm = _quick_session()
        warm.simulate("NCF")
        hit = warm.simulate("NCF")
        cold = _quick_session().simulate("NCF")
        assert hit.cycles == cold.cycles
        assert hit.energy_total().total == cold.energy_total().total

    def test_prefetch_deduplicates(self):
        session = _quick_session()
        session.prefetch([SimRequest.make("NCF")] * 5)
        assert session.stats.simulations == 1
        session.prefetch([SimRequest.make("NCF")])
        assert session.stats.simulations == 1

    def test_disk_cache_warms_new_session(self, tmp_path):
        s1 = _quick_session(cache_dir=tmp_path)
        cold = s1.simulate("NCF")
        s2 = _quick_session(cache_dir=tmp_path)
        warm = s2.simulate("NCF")
        assert s2.stats.simulations == 0
        assert s2.stats.disk_hits == 1
        assert warm.cycles == cold.cycles
        assert warm.energy_total().total == cold.energy_total().total

    def test_disk_cache_respects_sampling_parameters(self, tmp_path):
        s1 = _quick_session(cache_dir=tmp_path)
        s1.simulate("NCF")
        other = SimulationSession(
            cache_dir=tmp_path, sample_strips=3, sample_steps=8
        )
        other.simulate("NCF")
        assert other.stats.disk_hits == 0
        assert other.stats.simulations == 1


class TestParallelDeterminism:
    def test_jobs4_tables_bit_identical_to_serial(self):
        serial = run_fig11_speedup(models=MODELS, session=_quick_session())
        parallel_session = _quick_session(jobs=4)
        parallel = run_fig11_speedup(models=MODELS, session=parallel_session)
        assert parallel.render() == serial.render()
        assert parallel.rows == serial.rows  # raw floats, not formatting
        assert parallel_session.stats.simulations == len(MODELS) * 4

    def test_jobs4_results_equal_serial_results(self):
        request = SimRequest.make("NCF")
        serial = _quick_session()
        serial.prefetch([request, SimRequest.make("SNLI")])
        parallel = _quick_session(jobs=2)
        parallel.prefetch([request, SimRequest.make("SNLI")])
        a = serial.simulate("NCF")
        b = parallel.simulate("NCF")
        assert a.cycles == b.cycles
        assert a.counters_total().lanes.to_dict() == b.counters_total().lanes.to_dict()
        assert a.energy_total().total == b.energy_total().total

    def test_figures_share_session_results(self):
        session = _quick_session()
        run_fig11_speedup(models=MODELS, session=session)
        after_fig11 = session.stats.simulations
        run_fig14_phases(models=MODELS, session=session)
        assert session.stats.simulations == after_fig11
