"""Tests for SessionConfig, the legacy-kwarg shim, and the api facade."""

import json

import pytest

import repro.api as api
from repro.core.config import baseline_paper_config
from repro.harness.runner import (
    SessionConfig,
    SimRequest,
    SimulationSession,
    WireFormatError,
)

QUICK = SessionConfig(sample_strips=2, sample_steps=8)


class TestSessionConfigValidation:
    def test_defaults(self):
        config = SessionConfig()
        assert config.jobs == 1
        assert config.cache_dir is None
        assert config.sample_strips == 8
        assert config.sample_steps == 32
        assert config.sim_seed == 1234
        assert config.memory_engine == "roofline"
        assert config.workload_cache is True

    def test_jobs_clamped_like_legacy_constructor(self):
        assert SessionConfig(jobs=0).jobs == 1
        assert SessionConfig(jobs=-3).jobs == 1
        assert SessionConfig(jobs=4).jobs == 4

    @pytest.mark.parametrize("field", ["sample_strips", "sample_steps"])
    def test_sampling_must_be_positive_integers(self, field):
        with pytest.raises(ValueError, match=field):
            SessionConfig(**{field: 0})
        with pytest.raises(ValueError, match=field):
            SessionConfig(**{field: 2.5})
        with pytest.raises(ValueError, match=field):
            SessionConfig(**{field: True})

    def test_sim_seed_must_be_integer(self):
        with pytest.raises(ValueError, match="sim_seed"):
            SessionConfig(sim_seed="lucky")

    def test_memory_engine_message_matches_legacy(self):
        with pytest.raises(ValueError, match="unknown memory engine 'dram'"):
            SessionConfig(memory_engine="dram")

    def test_paths_normalized_to_strings(self, tmp_path):
        config = SessionConfig(
            cache_dir=tmp_path, workload_cache=tmp_path / "wl"
        )
        assert config.cache_dir == str(tmp_path)
        assert config.workload_cache == str(tmp_path / "wl")

    def test_hashable_and_frozen(self):
        config = SessionConfig()
        assert hash(config) == hash(SessionConfig())
        with pytest.raises(AttributeError):
            config.jobs = 2


class TestWorkloadCacheSpec:
    def test_disabled(self):
        assert SessionConfig(workload_cache=False).workload_cache_spec is None

    def test_default_in_memory(self):
        assert SessionConfig().workload_cache_spec == "default"

    def test_follows_cache_dir(self, tmp_path):
        spec = SessionConfig(cache_dir=tmp_path).workload_cache_spec
        assert spec == str(tmp_path / "workloads")

    def test_explicit_directory_wins(self, tmp_path):
        config = SessionConfig(
            cache_dir=tmp_path, workload_cache=tmp_path / "elsewhere"
        )
        assert config.workload_cache_spec == str(tmp_path / "elsewhere")


class TestSessionConfigWireForm:
    def test_round_trip(self, tmp_path):
        config = SessionConfig(
            jobs=3,
            cache_dir=tmp_path,
            sample_strips=2,
            sample_steps=8,
            sim_seed=7,
            memory_engine="hierarchy",
            workload_cache=False,
        )
        back = SessionConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert back == config

    def test_omitted_fields_take_defaults(self):
        assert SessionConfig.from_dict({"jobs": 2}) == SessionConfig(jobs=2)

    def test_non_mapping_rejected(self):
        with pytest.raises(WireFormatError, match="JSON object"):
            SessionConfig.from_dict([1, 2])

    def test_unknown_field_named(self):
        with pytest.raises(WireFormatError, match="turbo"):
            SessionConfig.from_dict({"turbo": True})

    def test_foreign_schema_rejected(self):
        with pytest.raises(WireFormatError, match="schema"):
            SessionConfig.from_dict({"schema": 99})

    def test_field_validation_still_applies(self):
        with pytest.raises(ValueError, match="memory engine"):
            SessionConfig.from_dict({"memory_engine": "dram"})


class TestConstructorShim:
    def test_config_constructor_does_not_warn(self, recwarn):
        session = SimulationSession(config=QUICK)
        assert session.config == QUICK
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_bare_constructor_does_not_warn(self, recwarn):
        session = SimulationSession()
        assert session.config == SessionConfig()
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 2},
            {"cache_dir": "somewhere"},
            {"sample_strips": 2},
            {"sample_steps": 8},
            {"sim_seed": 7},
            {"memory_engine": "hierarchy"},
            {"workload_cache": False},
        ],
    )
    def test_each_legacy_kwarg_warns_and_still_works(self, kwargs):
        with pytest.warns(DeprecationWarning, match="SessionConfig"):
            session = SimulationSession(**kwargs)
        expected = SessionConfig(**kwargs)
        assert session.config == expected

    def test_legacy_positional_jobs_still_works(self):
        with pytest.warns(DeprecationWarning):
            session = SimulationSession(4)
        assert session.config.jobs == 4

    def test_config_plus_legacy_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="either"):
            SimulationSession(config=QUICK, jobs=2)

    def test_legacy_attributes_still_exposed(self):
        session = SimulationSession(config=QUICK)
        assert session.sample_strips == 2
        assert session.sample_steps == 8
        assert session.jobs == 1
        assert session.memory_engine == "roofline"


class TestApiFacade:
    def test_session_builders(self):
        assert api.session(jobs=2).config.jobs == 2
        assert api.session(QUICK).config is QUICK
        with pytest.raises(TypeError, match="not both"):
            api.session(QUICK, jobs=2)

    def test_simulate_matches_session(self):
        session = SimulationSession(config=QUICK)
        direct = session.simulate("NCF")
        via_api = api.simulate("NCF", session_config=QUICK)
        assert json.dumps(via_api.to_dict()) == json.dumps(direct.to_dict())

    def test_simulate_reuses_given_session(self):
        session = SimulationSession(config=QUICK)
        api.simulate("NCF", session=session)
        api.simulate("NCF", session=session)
        assert session.stats.simulations == 1
        assert session.stats.hits == 1

    def test_session_and_session_config_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            api.simulate(
                "NCF",
                session=SimulationSession(config=QUICK),
                session_config=QUICK,
            )

    def test_sweep_coerces_and_dedups(self):
        session = SimulationSession(config=QUICK)
        results = api.sweep(
            [
                "NCF",
                SimRequest.make("NCF"),
                SimRequest.make("NCF").to_dict(),
                SimRequest.make("NCF", baseline_paper_config()),
            ],
            session=session,
        )
        assert len(results) == 4
        assert session.stats.simulations == 2  # duplicates share one run
        assert json.dumps(results[0].to_dict()) == json.dumps(
            results[1].to_dict()
        )

    def test_scaleout_single_node_shares_cache_with_simulate(self):
        session = SimulationSession(config=QUICK)
        api.simulate("NCF", session=session)
        api.scaleout("NCF", nodes=1, session=session)
        assert session.stats.simulations == 1

    def test_facade_all_is_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
