"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig11", "table3", "pragmatic"):
            assert name in out

    def test_run_static_table(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "Tiles" in capsys.readouterr().out

    def test_run_with_model_filter(self, capsys):
        assert main(["run", "fig1", "--models", "NCF"]) == 0
        out = capsys.readouterr().out
        assert "NCF" in out
        assert "VGG16" not in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_unknown_experiment_rejected_before_any_run(self, capsys):
        """'run all'-style lists fail fast on a bad name."""
        assert main(["run", "fig99", "--models", "NCF"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_model_exits_2_and_lists_known(self, capsys):
        """Regression: an unknown --models name used to die with a raw
        KeyError deep in the model zoo."""
        assert main(["run", "fig11", "--models", "NoSuchModel"]) == 2
        err = capsys.readouterr().err
        assert "NoSuchModel" in err
        assert "VGG16" in err and "NCF" in err  # the known names

    def test_unknown_model_checked_before_simulating(self, capsys):
        assert main(["run", "fig1", "--models", "NCF", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert main(["run", "table2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["title"].startswith("Table II")
        assert "Parameter" in payload["headers"]
        assert any(row[0] == "Tiles" for row in payload["rows"])

    def test_out_dir_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["run", "table1", "--out", str(out)]) == 0
        text = (out / "table1.txt").read_text()
        assert "Table I" in text
        assert main(
            ["run", "table1", "--format", "json", "--out", str(out)]
        ) == 0
        payload = json.loads((out / "table1.json").read_text())
        assert len(payload["rows"]) == 9

    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["run", "fig13", "--models", "NCF", "--cache", str(cache)]
        assert main(args + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert sorted(cache.glob("*.json"))  # results persisted
        assert main(args) == 0  # warm, serial: same artifact
        assert capsys.readouterr().out == cold

    def test_every_registered_experiment_is_callable(self):
        for func in EXPERIMENTS.values():
            assert callable(func)


class TestScaleoutCli:
    def test_json_artifact_structure(self, capsys):
        assert main(
            ["run", "scaleout", "--models", "NCF", "--format", "json"]
        ) == 0
        aggregate, detail = json.loads(capsys.readouterr().out)
        assert "Scale-out" in aggregate["title"]
        assert aggregate["headers"][:2] == ["Model", "Nodes"]
        # Default sweep: one aggregate row per N in {1, 2, 4, 8}.
        assert [row[1] for row in aggregate["rows"]] == [1, 2, 4, 8]
        # Per-node breakdown at N=8: one row per node.
        assert [row[1] for row in detail["rows"]] == list(range(8))
        # The N=1 anchor has speedup exactly 1 and no communication.
        assert aggregate["rows"][0][3] == 1.0
        assert aggregate["rows"][0][5] == 0.0

    def test_json_artifact_deterministic(self, capsys):
        args = [
            "run", "scaleout", "--models", "NCF", "--nodes", "1", "2",
            "4", "8", "--format", "json",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        json.loads(first)  # parseable

    def test_partition_flag_changes_artifact(self, capsys):
        base = ["run", "scaleout", "--models", "NCF", "--nodes", "1", "2",
                "--format", "json"]
        assert main(base) == 0
        data = capsys.readouterr().out
        assert main(base + ["--partition", "pipeline"]) == 0
        pipe = capsys.readouterr().out
        assert "pipeline-parallel" in pipe
        assert pipe != data

    def test_nodes_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "scaleout", "--nodes", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_partition_rejects_unknown_scheme(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "scaleout", "--partition", "ring"])
        assert excinfo.value.code == 2

    def test_scaleout_results_persist_in_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = [
            "run", "scaleout", "--models", "NCF", "--nodes", "1", "2",
            "--cache", str(cache), "--format", "json",
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0  # warm run reads the disk cache
        assert capsys.readouterr().out == cold
