"""Tests for the command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig11", "table3", "pragmatic"):
            assert name in out

    def test_run_static_table(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "Tiles" in capsys.readouterr().out

    def test_run_with_model_filter(self, capsys):
        assert main(["run", "fig1", "--models", "NCF"]) == 0
        out = capsys.readouterr().out
        assert "NCF" in out
        assert "VGG16" not in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_every_registered_experiment_is_callable(self):
        for func in EXPERIMENTS.values():
            assert callable(func)
