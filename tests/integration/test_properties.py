"""Cross-module property tests (hypothesis): the invariants that tie the
arithmetic, encoding, scheduling and memory layers together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PEConfig
from repro.core.pe import FPRakerPE
from repro.core.schedule import schedule_groups
from repro.fp.accumulator import (
    AccumulatorSpec,
    ExtendedAccumulator,
    exact_product,
)
from repro.fp.bfloat16 import bf16_quantize
from repro.nn.fpmath import EngineConfig, MatmulEngine

# Strategy: bfloat16-representable finite values over a wide range.
bf16_values = st.floats(
    min_value=-(2.0**20), max_value=2.0**20, allow_nan=False
).map(lambda x: float(bf16_quantize(x)))

groups = st.lists(
    st.tuples(bf16_values, bf16_values), min_size=1, max_size=8
)


class TestPEArithmeticProperties:
    @given(groups)
    @settings(max_examples=200, deadline=None)
    def test_pe_without_ob_matches_reference(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        pe = FPRakerPE(PEConfig(ob_skip=False))
        pe.process_group(a, b)
        reference = ExtendedAccumulator()
        reference.accumulate([exact_product(x, y) for x, y in zip(a, b)])
        assert pe.value() == reference.value()

    @given(groups)
    @settings(max_examples=200, deadline=None)
    def test_ob_error_below_grid_scale(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        pe = FPRakerPE(PEConfig(ob_skip=True))
        pe.process_group(a, b)
        reference = ExtendedAccumulator()
        reference.accumulate([exact_product(x, y) for x, y in zip(a, b)])
        products = [x * y for x, y in zip(a, b) if x * y != 0.0]
        if not products:
            assert pe.value() == reference.value()
            return
        emax = int(np.floor(np.log2(max(abs(p) for p in products)))) + 1
        grid = 2.0 ** (emax - AccumulatorSpec().frac_bits)
        assert abs(pe.value() - reference.value()) <= 16 * grid

    @given(groups, st.integers(4, 12))
    @settings(max_examples=100, deadline=None)
    def test_narrower_accumulator_never_slower(self, pairs, frac_bits):
        """Shrinking the accumulator only raises the OB threshold's
        bite: cycles cannot increase."""
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        wide = FPRakerPE(
            PEConfig(accumulator=AccumulatorSpec(frac_bits=12))
        ).process_group(a, b)
        narrow = FPRakerPE(
            PEConfig(accumulator=AccumulatorSpec(frac_bits=frac_bits))
        ).process_group(a, b)
        assert narrow.cycles <= wide.cycles

    @given(groups)
    @settings(max_examples=100, deadline=None)
    def test_scalar_vs_vectorized_schedule(self, pairs):
        a = np.array([[p[0] for p in pairs] + [0.0] * (8 - len(pairs))])
        b = np.array([[p[1] for p in pairs] + [0.0] * (8 - len(pairs))])
        trace = FPRakerPE().process_group(a[0], b[0])
        result = schedule_groups(a, b)
        assert trace.cycles == result.cycles[0]
        assert trace.terms_processed == result.terms_processed[0].sum()


class TestEngineProperties:
    @given(
        st.integers(1, 4),
        st.integers(8, 40),
        st.integers(1, 3),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_bf16_engine_matches_reference_everywhere(self, m, k, n, seed):
        from repro.fp.accumulator import dot_reference

        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, (m, k)) * 2.0 ** rng.integers(-10, 10, (m, k))
        b = rng.normal(0, 1, (k, n))
        out = MatmulEngine(EngineConfig(mode="bf16")).matmul(a, b)
        for i in range(m):
            for j in range(n):
                assert out[i, j] == dot_reference(a[i], b[:, j])

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_fpraker_engine_linearity_in_scaling(self, seed):
        """Scaling both operands by powers of two scales the result
        exactly (the arithmetic is exponent-shift invariant)."""
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, (2, 16))
        b = rng.normal(0, 1, (16, 2))
        engine = MatmulEngine(EngineConfig(mode="fpraker"))
        base = engine.matmul(a, b)
        scaled = engine.matmul(a * 4.0, b * 8.0)
        assert np.array_equal(scaled, base * 32.0)


class TestMemoryProperties:
    @given(
        st.integers(1, 50),
        st.integers(1, 4),
        st.integers(1, 50),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_container_roundtrip(self, c, r, k, seed):
        from repro.memory.container import pack_containers, unpack_containers

        rng = np.random.default_rng(seed)
        tensor = bf16_quantize(rng.normal(0, 3, (c, r, k)))
        back = unpack_containers(pack_containers(tensor), tensor.shape)
        assert np.array_equal(back, tensor)

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_transposer_property(self, rows8, cols8, seed):
        from repro.memory.transposer import transpose_blocks

        rng = np.random.default_rng(seed)
        matrix = rng.normal(0, 1, (8 * rows8, 8 * cols8))
        assert np.array_equal(transpose_blocks(matrix), matrix.T)


class TestCompressionProperties:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=300),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_masked_roundtrip(self, exps, seed):
        from repro.compression.base_delta import (
            compress_exponents,
            decompress_exponents,
        )

        rng = np.random.default_rng(seed)
        arr = np.asarray(exps, dtype=np.int64)
        mask = rng.random(arr.size) < 0.3
        arr = np.where(mask, 0, arr)
        back = decompress_exponents(compress_exponents(arr, mask), arr.size)
        assert np.array_equal(back[~mask], arr[~mask])
