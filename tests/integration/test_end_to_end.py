"""End-to-end integration tests: the paper's headline claims in miniature.

These use reduced sampling for speed; the benchmarks regenerate the full
figures.  Bands are deliberately loose -- they pin the *shape* of each
result (who wins and by roughly how much), not the exact number.
"""

import numpy as np
import pytest

from repro.core.accelerator import AcceleratorSimulator
from repro.core.baseline import BaselineAccelerator
from repro.core.config import fpraker_paper_config
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.harness.experiments import (
    run_fig11_speedup,
    run_fig13_skipped,
    run_fig14_phases,
)
from repro.harness.runner import SimulationSession
from repro.traces.workloads import build_workloads


@pytest.fixture(scope="module")
def quick_sims():
    fpr = AcceleratorSimulator(sample_strips=2, sample_steps=16)
    base = BaselineAccelerator()
    return fpr, base


def _speedup(model, fpr, base, progress=0.5):
    workloads = build_workloads(model, progress=progress)
    return fpr.simulate_workload(workloads).speedup_vs(
        base.simulate_workload(workloads)
    )


class TestHeadlineSpeedups:
    def test_vgg16_band(self, quick_sims):
        assert 1.2 <= _speedup("VGG16", *quick_sims) <= 1.9

    def test_resnet18q_best_convnet(self, quick_sims):
        """Quantization-trained ResNet18-Q is the paper's best convnet
        (2.04x); it must beat the unquantized convnets here too."""
        fpr, base = quick_sims
        quantized = _speedup("ResNet18-Q", fpr, base)
        assert quantized > 1.5
        assert quantized > _speedup("SqueezeNet 1.1", fpr, base)

    def test_snli_band(self, quick_sims):
        """SNLI's high bit sparsity gives ~1.8x in the paper."""
        assert 1.5 <= _speedup("SNLI", *quick_sims) <= 2.2

    def test_geomean_band(self, quick_sims):
        fpr, base = quick_sims
        speeds = [
            _speedup(m, fpr, base)
            for m in ("VGG16", "ResNet18-Q", "SNLI", "NCF", "Bert")
        ]
        geomean = float(np.exp(np.mean(np.log(speeds))))
        assert 1.25 <= geomean <= 1.85


class TestEnergyClaims:
    def test_core_efficiency_band(self, quick_sims):
        """Paper: ~1.4x core energy efficiency on average."""
        fpr, base = quick_sims
        ratios = []
        for model in ("VGG16", "SNLI", "ResNet18-Q"):
            workloads = build_workloads(model)
            f = fpr.simulate_workload(workloads)
            b = base.simulate_workload(workloads)
            ratios.append(
                b.energy_total().core.total / f.energy_total().core.total
            )
        geomean = float(np.exp(np.mean(np.log(ratios))))
        assert 1.1 <= geomean <= 1.9

    def test_total_efficiency_above_one(self, quick_sims):
        fpr, base = quick_sims
        workloads = build_workloads("Detectron2")
        f = fpr.simulate_workload(workloads)
        b = base.simulate_workload(workloads)
        assert b.energy_total().total / f.energy_total().total > 1.0


class TestPragmaticNegativeResult:
    def test_pragmatic_slower_than_baseline(self):
        """Paper: Pragmatic-FP is on average 1.72x slower at iso area."""
        prag = PragmaticFPAccelerator(sample_strips=2, sample_steps=16)
        base = BaselineAccelerator()
        slowdowns = []
        for model in ("VGG16", "Image2Text", "Bert"):
            workloads = build_workloads(model)
            slowdowns.append(
                prag.simulate_workload(workloads).cycles
                / base.simulate_workload(workloads).cycles
            )
        geomean = float(np.exp(np.mean(np.log(slowdowns))))
        assert geomean > 1.3


class TestStallStructure:
    def test_no_term_dominates_stalls(self, quick_sims):
        """Paper Fig 15: cross-lane term imbalance is the largest stall
        class (32.8% average, up to 55% for NCF)."""
        fpr, _ = quick_sims
        result = fpr.simulate_workload(build_workloads("NCF"))
        fractions = result.counters_total().lanes.fractions()
        stalls = {k: v for k, v in fractions.items() if k != "useful"}
        assert max(stalls, key=stalls.get) == "no_term"
        assert fractions["no_term"] > 0.3

    def test_shift_range_stalls_small(self, quick_sims):
        """Paper: the 3-position window is a good trade -- its stalls
        are relatively few."""
        fpr, _ = quick_sims
        result = fpr.simulate_workload(build_workloads("VGG16"))
        assert result.counters_total().lanes.fractions()["shift_range"] < 0.1


class TestSessionedExperiments:
    """The acceptance property of the cached runner: a figure subset
    performs each unique (model, config, progress, seed, acc_profile)
    simulation exactly once per session, and parallel execution is
    bit-identical to serial."""

    MODELS = ("NCF", "SNLI")

    def test_three_figures_share_unique_simulations(self):
        session = SimulationSession(sample_strips=2, sample_steps=8)
        run_fig11_speedup(models=self.MODELS, session=session)
        # fig11 needs 4 configs per model (baseline, zero, zero+bdc, full).
        assert session.stats.simulations == len(self.MODELS) * 4
        run_fig13_skipped(models=self.MODELS, session=session)
        run_fig14_phases(models=self.MODELS, session=session)
        # figs 13/14 only read (baseline, full) pairs fig11 already ran.
        assert session.stats.simulations == len(self.MODELS) * 4
        assert session.unique_simulations == len(self.MODELS) * 4
        assert session.stats.hits > 0

    def test_parallel_session_bit_identical(self):
        serial = SimulationSession(sample_strips=2, sample_steps=8)
        parallel = SimulationSession(jobs=4, sample_strips=2, sample_steps=8)
        tables_serial = [
            run_fig11_speedup(models=self.MODELS, session=serial),
            run_fig14_phases(models=self.MODELS, session=serial),
        ]
        tables_parallel = [
            run_fig11_speedup(models=self.MODELS, session=parallel),
            run_fig14_phases(models=self.MODELS, session=parallel),
        ]
        for left, right in zip(tables_serial, tables_parallel):
            assert left.rows == right.rows
            assert left.render() == right.render()

    def test_sessioned_figures_match_direct_simulation(self, quick_sims):
        """The session front end reproduces ad-hoc simulator results."""
        session = SimulationSession(sample_strips=2, sample_steps=16)
        table = run_fig14_phases(models=("NCF",), session=session)
        fpr, base = quick_sims
        workloads = build_workloads("NCF", progress=0.5)
        full = fpr.simulate_workload(workloads)
        ref = base.simulate_workload(workloads)
        expected = full.phase_speedup_vs(ref, "AxG")
        assert table.rows[0][1] == pytest.approx(expected, rel=0, abs=0)


class TestOverTime:
    def test_speedup_stable_for_stable_models(self, quick_sims):
        fpr, base = quick_sims
        speeds = [
            _speedup("Bert", fpr, base, progress=p) for p in (0.2, 0.6, 1.0)
        ]
        assert max(speeds) - min(speeds) < 0.25

    def test_resnet18q_improves_after_pact_settles(self, quick_sims):
        fpr, base = quick_sims
        early = _speedup("ResNet18-Q", fpr, base, progress=0.05)
        late = _speedup("ResNet18-Q", fpr, base, progress=0.6)
        assert late > early
