"""Numba backend vs the numpy reference: kernel-level bit-identity.

These suites exercise the ``@njit``-compiled kernels directly against
:class:`repro.backends.numpy_backend.NumpyBackend` -- the bit-exactness
anchor -- over hypothesis-generated inputs, including the degenerate
shapes the simulators produce (empty groups, single strips, all-zero
streams).  The whole module skips when the optional numba dependency
(the ``[backends]`` extra) is not installed; the dispatch-level parity
suite in ``test_parity.py`` still runs everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numba")

from repro.backends import get_backend  # noqa: E402
from repro.nn.fpmath import (  # noqa: E402
    _LUT_PARTIAL_SIGNED16_FLAT,
    EngineConfig,
    MatmulEngine,
)

NUMPY = get_backend("numpy")
NUMBA = get_backend("numba")

_SENTINEL = np.int64(1 << 30)


def _schedule_case(seed, groups, lanes, n_terms, kmax):
    rng = np.random.default_rng(seed)
    count = rng.integers(0, n_terms + 1, (groups, lanes))
    k = rng.integers(0, kmax, (groups, lanes, n_terms))
    slot = np.arange(n_terms)
    k = np.where(slot < count[:, :, None], k, _SENTINEL)
    return k, count


class TestCompactCycleLoop:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        groups=st.integers(1, 12),
        lanes=st.integers(1, 8),
        n_terms=st.integers(1, 5),
        kmax=st.sampled_from([2, 6, 14, 40]),
        window=st.integers(1, 8),
    )
    def test_property(self, seed, groups, lanes, n_terms, kmax, window):
        k, kept = _schedule_case(seed, groups, lanes, n_terms, kmax)
        want = NUMPY.compact_cycle_loop(k, kept, window, int(_SENTINEL))
        got = NUMBA.compact_cycle_loop(k, kept, window, int(_SENTINEL))
        for ours, theirs in zip(got, want):
            assert ours.dtype == theirs.dtype
            assert (ours == theirs).all()

    def test_int16_offsets(self):
        k, kept = _schedule_case(3, 40, 8, 5, 14)
        sentinel16 = np.int16(1 << 12)
        k16 = np.where(k >= _SENTINEL, np.int64(sentinel16), k).astype(
            np.int16
        )
        want = NUMPY.compact_cycle_loop(k16, kept, 3, int(sentinel16))
        got = NUMBA.compact_cycle_loop(k16, kept, 3, int(sentinel16))
        for ours, theirs in zip(got, want):
            assert (ours == theirs).all()

    def test_all_empty_groups(self):
        k = np.full((5, 4, 3), _SENTINEL)
        kept = np.zeros((5, 4), dtype=np.int64)
        want = NUMPY.compact_cycle_loop(k, kept, 4, int(_SENTINEL))
        got = NUMBA.compact_cycle_loop(k, kept, 4, int(_SENTINEL))
        for ours, theirs in zip(got, want):
            assert (ours == theirs).all()


class TestColumnTimeline:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        strips=st.integers(1, 6),
        cols=st.integers(1, 8),
        steps=st.integers(1, 24),
        depth=st.integers(1, 8),
    )
    def test_property(self, seed, strips, cols, steps, depth):
        rng = np.random.default_rng(seed)
        col_cycles = rng.integers(0, 40, (strips, cols, steps))
        want = NUMPY.column_timeline(col_cycles, depth)
        got = NUMBA.column_timeline(col_cycles, depth)
        for ours, theirs in zip(got, want):
            assert ours.dtype == theirs.dtype
            assert (ours == theirs).all()

    def test_single_strip(self):
        rng = np.random.default_rng(1)
        col_cycles = rng.integers(0, 12, (1, 8, 10))
        want = NUMPY.column_timeline(col_cycles, 2)
        got = NUMBA.column_timeline(col_cycles, 2)
        for ours, theirs in zip(got, want):
            assert (ours == theirs).all()

    def test_all_zero_cycles(self):
        col_cycles = np.zeros((3, 4, 6), dtype=np.int64)
        want = NUMPY.column_timeline(col_cycles, 3)
        got = NUMBA.column_timeline(col_cycles, 3)
        for ours, theirs in zip(got, want):
            assert (ours == theirs).all()


class TestAccumulateChunks:
    """Pin through the engine: field extraction stays in fpmath, so the
    engine-level comparison covers the exact array shapes/dtypes the
    kernel receives."""

    def _assert_same(self, got, want):
        both_nan = np.isnan(got) & np.isnan(want)
        same = (
            (got == want) & (np.signbit(got) == np.signbit(want))
        ) | both_nan
        assert same.all()

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 12),
        k=st.integers(1, 200),
        n=st.integers(1, 8),
        spread=st.sampled_from([0, 6, 20, 120]),
        sparsity=st.sampled_from([0.0, 0.4, 1.0]),
        mode=st.sampled_from(["bf16", "fpraker"]),
        frac_bits=st.sampled_from([5, 12, 18, 23]),
    )
    @pytest.mark.filterwarnings(
        "ignore:overflow encountered in cast:RuntimeWarning"
    )
    def test_property(self, seed, m, k, n, spread, sparsity, mode, frac_bits):
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, (m, k)) * 2.0 ** rng.integers(
            -spread, spread + 1, (m, k)
        )
        b = rng.normal(0, 1, (k, n)) * 2.0 ** rng.integers(
            -spread, spread + 1, (k, n)
        )
        a[rng.random(a.shape) < sparsity] = 0.0
        want = MatmulEngine(
            EngineConfig(
                mode=mode, acc_frac_bits=frac_bits, kernel_backend="numpy"
            )
        ).matmul(a, b)
        got = MatmulEngine(
            EngineConfig(
                mode=mode, acc_frac_bits=frac_bits, kernel_backend="numba"
            )
        ).matmul(a, b)
        self._assert_same(got, want)

    def test_lut_is_shared(self):
        # Both backends read the same flattened CSD partial table.
        assert _LUT_PARTIAL_SIGNED16_FLAT.flags.c_contiguous
