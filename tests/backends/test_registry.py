"""The kernel-backend registry: lookup, caching, fallback, validation.

The dispatch contract (every backend bit-identical, the knob absent
from canonical cache keys) is enforced by the parity suites next door;
these tests pin the registry mechanics that make the knob safe to
expose: unknown names fail loudly at every layer, a missing optional
dependency degrades to numpy with a single warning, and the knob
round-trips through ``SessionConfig`` wire forms without entering the
canonical key.
"""

import warnings

import pytest

import repro.backends as backends
from repro.backends import (
    KERNEL_BACKENDS,
    BackendUnavailableError,
    KernelBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.backends.numpy_backend import NumpyBackend


def _numba_installed() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class TestRegistry:
    def test_numpy_always_available(self):
        backend = get_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.name == "numpy"
        assert "numpy" in available_backends()

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert resolve_backend("numpy") is get_backend("numpy")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cython")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cython")

    def test_every_registered_name_has_a_loader(self):
        assert set(KERNEL_BACKENDS) <= set(backends._REGISTRY)

    @pytest.mark.skipif(
        _numba_installed(), reason="numba present: no fallback to exercise"
    )
    def test_missing_numba_get_raises_actionable(self):
        get_backend.cache_clear()
        with pytest.raises(BackendUnavailableError, match="backends"):
            get_backend("numba")

    @pytest.mark.skipif(
        _numba_installed(), reason="numba present: no fallback to exercise"
    )
    def test_missing_numba_resolve_falls_back_with_warning(self):
        get_backend.cache_clear()
        resolve_backend.cache_clear()
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = resolve_backend("numba")
        assert isinstance(backend, NumpyBackend)
        # The lru cache makes the warning once-per-process: a second
        # resolve returns the cached fallback silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba") is backend

    @pytest.mark.skipif(
        not _numba_installed(), reason="optional numba not installed"
    )
    def test_numba_resolves_when_installed(self):
        backend = resolve_backend("numba")
        assert isinstance(backend, KernelBackend)
        assert backend.name == "numba"
        assert "numba" in available_backends()


class TestKnobValidation:
    def test_engine_config_rejects_unknown_backend(self):
        from repro.nn.fpmath import EngineConfig

        with pytest.raises(ValueError, match="kernel backend"):
            EngineConfig(kernel_backend="gpu")

    def test_accelerator_rejects_unknown_backend(self):
        from repro.core.accelerator import AcceleratorSimulator

        with pytest.raises(ValueError, match="kernel backend"):
            AcceleratorSimulator(kernel_backend="gpu")

    def test_session_config_rejects_unknown_backend(self):
        from repro.harness.runner import SessionConfig

        with pytest.raises(ValueError, match="kernel backend"):
            SessionConfig(kernel_backend="gpu")


class TestKnobWireForm:
    def test_session_config_round_trips_the_knob(self):
        from repro.harness.runner import SessionConfig

        config = SessionConfig(kernel_backend="numba")
        assert config.to_dict()["kernel_backend"] == "numba"
        assert SessionConfig.from_dict(config.to_dict()) == config

    def test_absent_knob_defaults_to_numpy(self):
        from repro.harness.runner import SessionConfig

        wire = SessionConfig().to_dict()
        del wire["kernel_backend"]
        assert SessionConfig.from_dict(wire).kernel_backend == "numpy"

    def test_knob_does_not_enter_canonical_keys(self):
        # Backends are bit-identical by contract, so a cached result is
        # valid under every backend: the canonical key must not move.
        import inspect

        from repro.harness.runner import SimRequest, canonical_key

        assert "kernel_backend" not in inspect.signature(
            canonical_key
        ).parameters
        key = canonical_key(SimRequest.make("NCF"), 2, 8, 1234)
        assert "kernel_backend" not in key and "numba" not in key
