"""Cross-backend bit-identity through the dispatching call sites.

Every ``kernel_backend`` value must produce byte-identical results at
every layer that dispatches: the compacting schedule, the batched tile
engine, the chunked matmul emulation, full workload simulations, and a
multi-process :class:`SimulationSession`.  In an environment without
numba the ``"numba"`` knob falls back to numpy -- the parity assertions
still hold (trivially), so this suite runs everywhere and hardens into
a real cross-backend check once the ``[backends]`` extra is installed.

Degenerate inputs get explicit coverage: all-zero operand streams,
single-strip stacks, empty operand/phase lists, and ``jobs > 1``
worker-process fan-out.
"""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import KERNEL_BACKENDS
from repro.core.accelerator import AcceleratorSimulator
from repro.core.config import PEConfig, TileConfig
from repro.core.schedule import (
    _K_SENTINEL,
    schedule_from_weights,
    schedule_from_weights_compact,
)
from repro.core.tile import TileSimulator
from repro.fp.bfloat16 import bf16_quantize
from repro.harness.runner import SessionConfig, SimRequest, SimulationSession
from repro.nn.fpmath import EngineConfig, MatmulEngine

# The fallback warning is part of the contract under test: silence it
# so parametrized runs without numba stay quiet.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*falling back to the numpy backend.*:RuntimeWarning"
)

_FIELDS = ("cycles", "useful", "shift_stall", "no_term")


def _schedule_case(seed, groups, lanes, n_terms, kmax):
    rng = np.random.default_rng(seed)
    count = rng.integers(0, n_terms + 1, (groups, lanes))
    k = rng.integers(0, kmax, (groups, lanes, n_terms))
    slot = np.arange(n_terms)
    k = np.where(slot < count[:, :, None], k, _K_SENTINEL)
    zero = np.zeros((groups, lanes), dtype=np.int64)
    return k, count, zero


def _strip_stack(seed, strips, rows, cols, steps, spread, zero_fraction):
    rng = np.random.default_rng(seed)
    a = bf16_quantize(
        rng.normal(0, 1, (strips, cols, steps, 8))
        * 2.0 ** rng.integers(-spread, spread + 1, (strips, cols, steps, 8))
    )
    b = bf16_quantize(
        rng.normal(0, 1, (strips, rows, steps, 8))
        * 2.0 ** rng.integers(-spread, spread + 1, (strips, rows, steps, 8))
    )
    a[rng.random(a.shape) < zero_fraction] = 0.0
    b[rng.random(b.shape) < zero_fraction / 2] = 0.0
    return a, b


@pytest.fixture(params=KERNEL_BACKENDS)
def backend_name(request):
    return request.param


class TestScheduleParity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        kmax=st.sampled_from([2, 14, 40]),
        window=st.integers(1, 8),
    )
    def test_property_every_backend(self, seed, kmax, window):
        k, kept, zero = _schedule_case(seed, 10, 6, 4, kmax)
        config = PEConfig(shift_window=window)
        ref = schedule_from_weights(k.copy(), kept.copy(), zero, zero, config)
        for name in KERNEL_BACKENDS:
            got = schedule_from_weights_compact(
                k.copy(), kept.copy(), zero, zero, config, kernel_backend=name
            )
            for field in _FIELDS:
                assert (
                    getattr(got, field) == getattr(ref, field)
                ).all(), f"{name}:{field}"

    def test_all_empty_groups(self, backend_name):
        k = np.full((6, 4, 3), _K_SENTINEL)
        kept = np.zeros((6, 4), dtype=np.int64)
        zero = np.zeros((6, 4), dtype=np.int64)
        got = schedule_from_weights_compact(
            k, kept, zero, zero, PEConfig(), kernel_backend=backend_name
        )
        assert (got.cycles == 1).all()
        assert (got.no_term == 1).all()


class TestTileParity:
    def _assert_backends_match(self, config, a, b, initial=None):
        results = []
        for name in KERNEL_BACKENDS:
            sim = TileSimulator(config, kernel_backend=name)
            batch = sim.simulate_strips(a, b, initial)
            results.append(
                [batch.strip_result(i).counters for i in range(a.shape[0])]
            )
        for other in results[1:]:
            assert other == results[0]

    def test_random_stack(self):
        a, b = _strip_stack(7, 4, 8, 8, 12, 6, 0.3)
        self._assert_backends_match(TileConfig(), a, b)

    def test_all_zero_streams(self):
        a = np.zeros((3, 8, 5, 8))
        b = np.zeros((3, 8, 5, 8))
        self._assert_backends_match(TileConfig(), a, b)

    def test_single_strip_stack(self):
        a, b = _strip_stack(11, 1, 8, 8, 6, 4, 0.2)
        self._assert_backends_match(
            TileConfig(buffer_depth=2, pe=PEConfig(shift_window=2)), a, b
        )


class TestMatmulParity:
    def _engines(self, mode, **knobs):
        return [
            MatmulEngine(
                EngineConfig(mode=mode, kernel_backend=name, **knobs)
            )
            for name in KERNEL_BACKENDS
        ]

    def _assert_same(self, got, want):
        both_nan = np.isnan(got) & np.isnan(want)
        same = (
            (got == want) & (np.signbit(got) == np.signbit(want))
        ) | both_nan
        assert same.all()

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        mode=st.sampled_from(["bf16", "fpraker"]),
        spread=st.sampled_from([0, 6, 20]),
        frac_bits=st.sampled_from([12, 18, 23]),
    )
    def test_property_every_backend(self, seed, mode, spread, frac_bits):
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, (5, 130)) * 2.0 ** rng.integers(
            -spread, spread + 1, (5, 130)
        )
        b = rng.normal(0, 1, (130, 3)) * 2.0 ** rng.integers(
            -spread, spread + 1, (130, 3)
        )
        first, *rest = self._engines(mode, acc_frac_bits=frac_bits)
        want = first.matmul(a, b)
        for engine in rest:
            self._assert_same(engine.matmul(a, b), want)

    def test_all_zero_operands(self):
        a = np.zeros((4, 70))
        b = np.zeros((70, 3))
        for mode in ("bf16", "fpraker"):
            first, *rest = self._engines(mode)
            want = first.matmul(a, b)
            assert (want == 0.0).all()
            assert not np.signbit(want).any()
            for engine in rest:
                self._assert_same(engine.matmul(a, b), want)


class TestWorkloadParity:
    def _workloads(self):
        from repro.traces.workloads import build_workloads

        return build_workloads("NCF", progress=0.5, seed=0, cache=None)

    def test_full_workload_bytes_identical(self):
        results = [
            AcceleratorSimulator(
                sample_strips=2, sample_steps=8, kernel_backend=name
            )
            .simulate_workload(self._workloads())
            .to_dict()
            for name in KERNEL_BACKENDS
        ]
        first = json.dumps(results[0], sort_keys=True)
        for other in results[1:]:
            assert json.dumps(other, sort_keys=True) == first

    def test_empty_phase_list_rejected_identically(self, backend_name):
        sim = AcceleratorSimulator(kernel_backend=backend_name)
        with pytest.raises(ValueError, match="empty workload list"):
            sim.simulate_workload([])


class TestSessionParity:
    """The knob through SimulationSession, including worker processes."""

    def _run(self, **knobs):
        config = SessionConfig(
            sample_strips=2, sample_steps=8, workload_cache=False, **knobs
        )
        session = SimulationSession(config=config)
        requests = [SimRequest.make("NCF"), SimRequest.make("NCF", seed=3)]
        session.prefetch(requests)
        return [
            json.dumps(session.resolve(r).to_dict(), sort_keys=True)
            for r in requests
        ]

    def test_backends_identical_through_session(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            runs = [
                self._run(kernel_backend=name) for name in KERNEL_BACKENDS
            ]
        for other in runs[1:]:
            assert other == runs[0]

    def test_jobs_fan_out_identical_bytes(self):
        # jobs=2 forwards the knob into worker processes; the bytes
        # must match the serial jobs=1 run exactly.
        serial = self._run(jobs=1)
        fanned = self._run(jobs=2)
        assert fanned == serial
