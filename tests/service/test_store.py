"""Tests for the sqlite-backed shared result store."""

import json
import sqlite3
import threading

import numpy as np
import pytest

from repro.core.accelerator import AcceleratorSimulator
from repro.core.workload import PhaseWorkload
from repro.fp.bfloat16 import bf16_quantize
from repro.harness.cache import CACHE_VERSION, ResultCache
from repro.service.store import STORE_FILENAME, ResultStore, StoreError

QUICK = dict(sample_strips=2, sample_steps=8)


def _result(seed=0):
    rng = np.random.default_rng(seed)
    values_a = bf16_quantize(rng.normal(0, 1, 2048))
    values_a[rng.random(2048) < 0.4] = 0.0
    workload = PhaseWorkload(
        model="m", layer="l", phase="AxW", macs=500_000, reduction=256,
        tensor_a="A", tensor_b="W",
        values_a=values_a,
        values_b=bf16_quantize(rng.normal(0, 1, 2048)),
        input_bytes=1e6, output_bytes=2e5,
    )
    return AcceleratorSimulator(**QUICK).simulate_workload([workload])


def _raw(store_path):
    """A raw sqlite connection onto the store file (for fault injection)."""
    return sqlite3.connect(str(store_path))


class TestPaths:
    def test_directory_grows_the_default_filename(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            assert store.path == tmp_path / "store" / STORE_FILENAME
            assert store.path.exists()

    def test_explicit_sqlite_file(self, tmp_path):
        with ResultStore(tmp_path / "my.sqlite") as store:
            assert store.path == tmp_path / "my.sqlite"


class TestRoundTrip:
    def test_byte_identical_round_trip(self, tmp_path):
        result = _result()
        with ResultStore(tmp_path) as store:
            store.store("k1", result)
            loaded = store.load("k1")
        assert json.dumps(loaded.to_dict()) == json.dumps(result.to_dict())

    def test_miss_is_none(self, tmp_path):
        with ResultStore(tmp_path) as store:
            assert store.load("nope") is None
            assert not store.contains("nope")

    def test_contains_and_len(self, tmp_path):
        with ResultStore(tmp_path) as store:
            assert len(store) == 0
            store.store("k1", _result())
            store.store("k2", _result(1))
            store.store("k1", _result())  # upsert, not a third row
            assert len(store) == 2
            assert store.contains("k1") and store.contains("k2")

    def test_persists_across_instances(self, tmp_path):
        result = _result()
        with ResultStore(tmp_path) as store:
            store.store("k1", result)
        with ResultStore(tmp_path) as reopened:
            assert json.dumps(reopened.load("k1").to_dict()) == json.dumps(
                result.to_dict()
            )


class TestVersioning:
    def _stale_one_row(self, store, key):
        store.close()
        with _raw(store.path) as conn:
            conn.execute(
                "UPDATE results SET version = ? WHERE key = ?",
                (CACHE_VERSION + 1, key),
            )
            conn.commit()

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("k1", _result())
        self._stale_one_row(store, "k1")
        with ResultStore(tmp_path, evict_stale=False) as fresh:
            assert fresh.load("k1") is None
            assert not fresh.contains("k1")
            assert len(fresh) == 0
            assert fresh.stats()["stale_entries"] == 1

    def test_evict_stale_sweeps_other_versions(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("stale", _result())
        self._stale_one_row(store, "stale")
        with ResultStore(tmp_path, evict_stale=False) as fresh:
            fresh.store("current", _result(1))
            assert fresh.evict_stale() == 1
            assert fresh.stats()["stale_entries"] == 0
            assert fresh.contains("current")

    def test_open_evicts_by_default(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("stale", _result())
        self._stale_one_row(store, "stale")
        with ResultStore(tmp_path) as fresh:
            assert fresh.stats()["stale_entries"] == 0


class TestHealing:
    def test_malformed_row_reads_as_miss_and_is_deleted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("bad", _result())
        store.close()
        with _raw(store.path) as conn:
            conn.execute(
                "UPDATE results SET payload = '{not json' WHERE key = 'bad'"
            )
            conn.commit()
        with ResultStore(tmp_path) as healed:
            assert healed.load("bad") is None
            # The poisoned row is gone: a clean write replaces it.
            assert len(healed) == 0
            healed.store("bad", _result(2))
            assert healed.load("bad") is not None

    def test_wrong_shape_payload_heals_too(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("bad", _result())
        store.close()
        with _raw(store.path) as conn:
            conn.execute(
                "UPDATE results SET payload = '{\"cycles\": 1}' "
                "WHERE key = 'bad'"
            )
            conn.commit()
        with ResultStore(tmp_path) as healed:
            assert healed.load("bad") is None


class TestImportLegacy:
    def test_migration_is_byte_identical(self, tmp_path):
        legacy = ResultCache(tmp_path / "cache")
        results = {"k1": _result(0), "k2": _result(1)}
        for key, result in results.items():
            legacy.store(key, result)
        with ResultStore(tmp_path / "store") as store:
            assert store.import_legacy(tmp_path / "cache") == 2
            for key, result in results.items():
                assert json.dumps(store.load(key).to_dict()) == json.dumps(
                    result.to_dict()
                )

    def test_stale_legacy_entries_are_skipped(self, tmp_path):
        legacy = ResultCache(tmp_path / "cache")
        legacy.store("k1", _result())
        path = legacy.path_for("k1")
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_VERSION - 1
        path.write_text(json.dumps(payload))
        with ResultStore(tmp_path / "store") as store:
            assert store.import_legacy(tmp_path / "cache") == 0

    def test_unreadable_entries_are_skipped(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "junk.json").write_text("{broken")
        (cache_dir / "alien.json").write_text('["not a cache entry"]')
        with ResultStore(tmp_path / "store") as store:
            assert store.import_legacy(cache_dir) == 0

    def test_missing_directory_imports_nothing(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            assert store.import_legacy(tmp_path / "nowhere") == 0


class TestConcurrency:
    def test_writer_and_readers_share_one_instance(self, tmp_path):
        result = _result()
        keys = [f"k{i}" for i in range(24)]
        errors = []
        with ResultStore(tmp_path) as store:
            def write():
                try:
                    for key in keys:
                        store.store(key, result)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def read():
                try:
                    for _ in range(3):
                        for key in keys:
                            loaded = store.load(key)
                            if loaded is not None:
                                assert loaded.cycles == result.cycles
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=write)] + [
                threading.Thread(target=read) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert len(store) == len(keys)

    def test_second_connection_reads_while_first_writes(self, tmp_path):
        result = _result()
        with ResultStore(tmp_path) as writer:
            with ResultStore(tmp_path) as reader:
                for i in range(8):
                    writer.store(f"k{i}", result)
                    assert reader.load(f"k{i}") is not None


class TestSchemaGuard:
    def test_foreign_store_layout_is_refused(self, tmp_path):
        store = ResultStore(tmp_path)
        store.close()
        with _raw(store.path) as conn:
            conn.execute(
                "UPDATE meta SET value = '99' WHERE name = 'store_schema'"
            )
            conn.commit()
        with pytest.raises(StoreError, match="schema 99"):
            ResultStore(tmp_path)

    def test_non_sqlite_file_is_refused_cleanly(self, tmp_path):
        bogus = tmp_path / "notdb.sqlite"
        bogus.write_text("not a database")
        with pytest.raises(StoreError, match="not a usable result store"):
            ResultStore(bogus)
