"""Tests for the versioned JSON wire schema (envelopes + SimRequest)."""

import json

import pytest

from repro.core.config import baseline_paper_config, fpraker_paper_config
from repro.harness.runner import (
    SimRequest,
    WIRE_SCHEMA_VERSION,
    WireFormatError,
    canonical_key,
)
from repro.service import wire


def _envelope(**fields):
    return {"schema": wire.ENVELOPE_SCHEMA, **fields}


class TestSimRequestWireForm:
    def test_round_trip_preserves_canonical_key(self):
        request = SimRequest.make(
            "NCF",
            baseline_paper_config(),
            progress=0.7,
            seed=3,
            acc_profile={"fc": 6},
            phases=("AxW", "GxW"),
        )
        back = SimRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert canonical_key(back, 4, 32, 1234) == canonical_key(
            request, 4, 32, 1234
        )

    def test_wire_form_carries_schema_version(self):
        assert SimRequest.make("NCF").to_dict()["schema"] == (
            WIRE_SCHEMA_VERSION
        )

    def test_none_config_round_trips_to_paper_config(self):
        back = SimRequest.from_dict(SimRequest.make("NCF").to_dict())
        assert back.resolved_config() == fpraker_paper_config()

    def test_unknown_field_is_actionable(self):
        data = SimRequest.make("NCF").to_dict()
        data["wombat"] = 1
        with pytest.raises(WireFormatError, match="wombat"):
            SimRequest.from_dict(data)

    def test_unknown_schema_rejected(self):
        data = SimRequest.make("NCF").to_dict()
        data["schema"] = 99
        with pytest.raises(WireFormatError, match="schema"):
            SimRequest.from_dict(data)

    @pytest.mark.parametrize(
        "patch,needle",
        [
            ({"model": 7}, "model"),
            ({"progress": "half"}, "progress"),
            ({"progress": 1.5}, "progress"),
            ({"seed": 0.5}, "seed"),
            ({"phases": ["AxW", "XxX"]}, "XxX"),
            ({"acc_profile": [["fc"]]}, "acc_profile"),
            ({"nodes": 0}, "nodes"),
            ({"partition": "diagonal"}, "partition"),
        ],
    )
    def test_field_validation_names_the_field(self, patch, needle):
        data = SimRequest.make("NCF").to_dict()
        data.update(patch)
        with pytest.raises(WireFormatError, match=needle):
            SimRequest.from_dict(data)


class TestEnvelopes:
    def test_parse_body_accepts_object(self):
        raw = json.dumps(_envelope(x=1)).encode()
        assert wire.parse_body(raw)["x"] == 1

    def test_parse_body_rejects_non_json(self):
        with pytest.raises(WireFormatError, match="not valid JSON"):
            wire.parse_body(b"{nope")

    def test_parse_body_rejects_non_object(self):
        with pytest.raises(WireFormatError, match="JSON object"):
            wire.parse_body(b"[1, 2]")

    def test_parse_body_rejects_foreign_schema(self):
        with pytest.raises(WireFormatError, match="envelope schema"):
            wire.parse_body(json.dumps({"schema": 42}).encode())

    def test_parse_simulate_round_trip(self):
        payload = _envelope(
            request=SimRequest.make("NCF").to_dict(), wait=False
        )
        request, wait = wire.parse_simulate(payload)
        assert request.model == "NCF" and wait is False

    def test_parse_simulate_requires_request(self):
        with pytest.raises(WireFormatError, match="'request'"):
            wire.parse_simulate(_envelope())

    def test_wait_must_be_boolean(self):
        payload = _envelope(
            request=SimRequest.make("NCF").to_dict(), wait="yes"
        )
        with pytest.raises(WireFormatError, match="wait"):
            wire.parse_simulate(payload)

    def test_parse_sweep_preserves_order(self):
        payload = _envelope(
            requests=[
                SimRequest.make(m).to_dict() for m in ("NCF", "SNLI", "NCF")
            ]
        )
        requests, wait = wire.parse_sweep(payload)
        assert [r.model for r in requests] == ["NCF", "SNLI", "NCF"]
        assert wait is True

    def test_parse_sweep_accepts_empty_list(self):
        # Regression: an empty sweep is a valid (trivial) batch, not a
        # wire error -- the daemon answers it with zero results.
        requests, wait = wire.parse_sweep(_envelope(requests=[]))
        assert requests == [] and wait is True

    def test_parse_sweep_rejects_non_list(self):
        with pytest.raises(WireFormatError, match="'requests' list"):
            wire.parse_sweep(_envelope(requests={"model": "NCF"}))
        with pytest.raises(WireFormatError, match="'requests' list"):
            wire.parse_sweep(_envelope())

    def test_parse_sweep_error_carries_index(self):
        payload = _envelope(
            requests=[SimRequest.make("NCF").to_dict(), {"model": 5}]
        )
        with pytest.raises(WireFormatError, match=r"requests\[1\]"):
            wire.parse_sweep(payload)

    def test_parse_sweep_enforces_envelope_limit(self):
        entry = SimRequest.make("NCF").to_dict()
        payload = _envelope(
            requests=[entry] * (wire.MAX_SWEEP_REQUESTS + 1)
        )
        with pytest.raises(WireFormatError, match="limit"):
            wire.parse_sweep(payload)


class TestResultEncoding:
    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError, match="kind"):
            wire.decode_result("mystery", {})

    def test_malformed_payload_rejected(self):
        with pytest.raises(WireFormatError, match="malformed"):
            wire.decode_result("workload", {"cycles": 1})

    def test_error_body_shape(self):
        body = wire.error_body("boom")
        assert body == {"schema": wire.ENVELOPE_SCHEMA, "error": "boom"}
