"""End-to-end tests: daemon + store + client over real HTTP."""

import http.client
import json
import time

import pytest

from repro.core.config import baseline_paper_config
from repro.harness.runner import (
    SessionConfig,
    SimRequest,
    SimulationSession,
)
from repro.service import wire
from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeoutError,
    connect,
)
from repro.service.daemon import background_daemon
from repro.service.store import ResultStore

# Reduced sampling keeps each cold simulation fast; the daemon and the
# in-process comparison session share this configuration.
QUICK = SessionConfig(sample_strips=2, sample_steps=8)


@pytest.fixture()
def service(tmp_path):
    """A live daemon (thread-pool mode) and its client."""
    with ResultStore(tmp_path / "store") as store:
        with background_daemon(QUICK, store) as (url, _thread):
            yield ServiceClient(url), store


def _get(url, path):
    """One raw GET, returning (status, parsed body)."""
    host, port = url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _post(url, path, body):
    """One raw POST of a JSON (or raw bytes) body."""
    host, port = url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        payload = body if isinstance(body, bytes) else json.dumps(body)
        conn.request("POST", path, payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestSimulate:
    def test_cold_then_warm(self, service):
        client, store = service
        status, result = client.submit("NCF")
        assert status == "miss" and result is not None
        status, warm = client.submit("NCF")
        assert status == "hit"
        assert json.dumps(warm.to_dict()) == json.dumps(result.to_dict())
        assert len(store) == 1

    def test_byte_identical_to_in_process_session(self, service):
        client, _store = service
        remote = client.simulate("NCF", baseline_paper_config(), 0.7, 3)
        local = SimulationSession(config=QUICK).simulate(
            "NCF", baseline_paper_config(), 0.7, 3
        )
        assert json.dumps(remote.to_dict()) == json.dumps(local.to_dict())

    def test_wait_false_goes_pending_then_lands(self, service):
        client, store = service
        status, result = client.submit("SNLI", wait=False)
        assert status == "pending" and result is None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, result = client.submit("SNLI", wait=False)
            if status == "hit":
                break
            time.sleep(0.2)
        assert status == "hit" and result is not None
        assert len(store) == 1

    def test_scaleout_requests_round_trip(self, service):
        client, _store = service
        result = client.simulate("NCF", nodes=4, partition="data")
        assert result.nodes == 4


class TestSweep:
    def test_batch_dedup_and_warm_repeat(self, service):
        client, store = service
        batch = ["NCF", "SNLI", "NCF"]  # duplicate dedups in-batch
        outcome = client.sweep(batch)
        assert outcome.statuses.count("miss") == 2
        assert outcome.statuses.count("hit") == 1
        assert len(store) == 2
        # The duplicate rode along on one simulation and shares bytes.
        assert json.dumps(outcome.results[0].to_dict()) == json.dumps(
            outcome.results[2].to_dict()
        )
        warm = client.sweep(batch)
        assert warm.statuses == ["hit", "hit", "hit"]
        assert warm.hit_fraction == 1.0
        assert warm.stats == {"hit": 3, "miss": 0, "pending": 0}
        assert len(store) == 2  # zero new simulations

    def test_mixed_request_forms(self, service):
        client, _store = service
        outcome = client.sweep(
            [
                "NCF",
                SimRequest.make("NCF", progress=0.7),
                SimRequest.make("NCF").to_dict(),
            ]
        )
        assert len(outcome.results) == 3
        assert all(r is not None for r in outcome.results)

    def test_sweep_matches_in_process_api_sweep(self, service):
        import repro.api as api

        client, _store = service
        batch = ["NCF", "SNLI"]
        remote = client.sweep(batch).results
        local = api.sweep(batch, session_config=QUICK)
        for ours, theirs in zip(remote, local):
            assert json.dumps(ours.to_dict()) == json.dumps(theirs.to_dict())

    def test_empty_sweep_returns_empty_outcome(self, service):
        # Regression: an empty batch used to 400 at the wire layer; it
        # must come back as a valid outcome with an all-zero tally.
        client, store = service
        outcome = client.sweep([])
        assert outcome.results == [] and outcome.statuses == []
        assert outcome.stats == {"hit": 0, "miss": 0, "pending": 0}
        assert outcome.hit_fraction == 0.0
        assert len(store) == 0  # nothing was simulated

    def test_empty_sweep_via_in_process_api(self):
        import repro.api as api

        assert api.sweep([], session_config=QUICK) == []


class TestStatsAndHealth:
    def test_healthz(self, service):
        client, _store = service
        assert client.healthy()

    def test_stats_reflect_traffic(self, service):
        client, store = service
        client.simulate("NCF")
        client.simulate("NCF")
        body = client.stats()
        assert body["stats"]["simulations"] == 1
        assert body["stats"]["disk_hits"] + body["stats"]["hits"] >= 1
        assert body["store"]["entries"] == len(store) == 1
        assert body["config"]["sample_strips"] == 2
        assert body["versions"]["envelope_schema"] == 1


class TestHttpErrors:
    @pytest.fixture()
    def url(self, service):
        client, _store = service
        return f"http://{client.host}:{client.port}"

    def test_unknown_path_is_404(self, url):
        status, body = _get(url, "/teleport")
        assert status == 404 and "endpoints" in body["error"]

    def test_wrong_method_is_405(self, url):
        status, body = _post(url, "/stats", {})
        assert status == 405 and "GET" in body["error"]

    def test_malformed_body_is_400(self, url):
        status, body = _post(url, "/simulate", b"{nope")
        assert status == 400 and "JSON" in body["error"]

    def test_invalid_request_is_400_with_field_name(self, url):
        status, body = _post(
            url, "/simulate", {"request": {"model": "NCF", "progress": 2.0}}
        )
        assert status == 400 and "progress" in body["error"]

    def test_client_surfaces_daemon_error(self, url):
        # A malformed sweep entry reaches the daemon over the raw
        # transport (the public sweep() validates client-side first);
        # the ServiceError carries the daemon's message and status.
        client = ServiceClient(url)
        body = {
            "schema": wire.ENVELOPE_SCHEMA,
            "requests": [{"model": 5}],
            "wait": True,
        }
        with pytest.raises(ServiceError, match=r"requests\[0\]") as err:
            client._call("POST", "/sweep", body)
        assert err.value.status == 400


class TestClientErrors:
    def test_connection_refused_is_typed_and_names_url(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceConnectionError, match="127.0.0.1:1"):
            client.stats()

    def test_connection_error_is_catchable_as_service_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceError):
            client.stats()

    def test_socket_timeout_is_typed_and_names_url(self):
        import socket
        import threading

        # A listener that accepts but never answers: the HTTP round
        # trip stalls on the response and must surface a typed timeout.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []

        def _accept():
            try:
                accepted.append(listener.accept()[0])
            except OSError:
                pass

        thread = threading.Thread(target=_accept, daemon=True)
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}", timeout=0.5)
            with pytest.raises(
                ServiceTimeoutError, match=f"127.0.0.1:{port}"
            ):
                client.stats()
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=5)

    def test_wait_false_uses_poll_timeout(self):
        # A wait=False poll must run under poll_timeout, not the full
        # cold-run timeout -- verified against a never-answering socket.
        import socket
        import threading
        import time as time_mod

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []

        def _accept():
            try:
                accepted.append(listener.accept()[0])
            except OSError:
                pass

        thread = threading.Thread(target=_accept, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                timeout=600.0,
                poll_timeout=0.5,
            )
            start = time_mod.monotonic()
            with pytest.raises(ServiceTimeoutError):
                client.submit("NCF", wait=False)
            assert time_mod.monotonic() - start < 30
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=5)


class TestConnect:
    def test_connect_health_checks(self, service):
        client, _store = service
        connected = connect(f"http://{client.host}:{client.port}")
        assert connected.healthy()

    def test_connect_refuses_dead_daemon(self):
        with pytest.raises(ServiceError, match="repro serve"):
            connect("http://127.0.0.1:1", timeout=2.0)

    def test_malformed_url_rejected(self):
        with pytest.raises(ServiceError, match="http"):
            ServiceClient("ftp://example")
