"""Closed-form exponent footprint vs per-group object pricing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base_delta import (
    _signed_width,
    compress_exponents,
    exponent_footprint_bits,
)


class TestFootprintClosedForm:
    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        size=st.integers(0, 300),
        sparsity=st.floats(0.0, 1.0),
        spread=st.sampled_from([1, 4, 64, 255]),
        with_mask=st.booleans(),
    )
    def test_equals_group_sum(self, seed, size, sparsity, spread, with_mask):
        rng = np.random.default_rng(seed)
        base = int(rng.integers(0, 256 - spread + 1))
        exponents = rng.integers(base, base + spread, size)
        zero_mask = (rng.random(size) < sparsity) if with_mask else None
        assert exponent_footprint_bits(exponents, zero_mask) == sum(
            g.bits for g in compress_exponents(exponents, zero_mask)
        )

    def test_empty_stream(self):
        assert exponent_footprint_bits(np.array([], dtype=np.int64)) == 0


class TestSignedWidth:
    def test_lut_matches_formula_over_full_range(self):
        deltas = np.arange(-256, 257, dtype=np.int64)
        widths = _signed_width(deltas)
        # Independent definition: smallest w with
        # -2^(w-1) <= d <= 2^(w-1) - 1 (0 for zero).
        for d, w in zip(deltas, widths):
            if d == 0:
                assert w == 0
                continue
            assert -(1 << (w - 1)) <= d <= (1 << (w - 1)) - 1
            assert not (-(1 << (w - 2)) <= d <= (1 << (w - 2)) - 1 and w >= 2)

    def test_wide_fallback(self):
        deltas = np.array([-100000, -257, 257, 100000, 0, 5])
        widths = _signed_width(deltas)
        for d, w in zip(deltas, widths):
            if d == 0:
                assert w == 0
                continue
            assert -(1 << (w - 1)) <= d <= (1 << (w - 1)) - 1
            assert not (-(1 << (w - 2)) <= d <= (1 << (w - 2)) - 1 and w >= 2)
