"""Tests for exponent base-delta compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base_delta import (
    GROUP_SIZE,
    exponent_fields,
    HEADER_BITS,
    BASE_BITS,
    MAX_DELTA_BITS,
    RAW_EXP_BITS,
    compress_exponents,
    compression_summary,
    compress_tensor_bytes,
    decompress_exponents,
    exponent_fields,
    exponent_footprint_bits,
)
from repro.fp.bfloat16 import bf16_quantize


class TestExponentFields:
    def test_known_fields(self):
        fields = exponent_fields(np.array([1.0, 2.0, 0.5, 0.0]))
        assert list(fields) == [127, 128, 126, 0]


class TestCompressRoundtrip:
    def test_uniform_group_zero_width(self):
        exps = np.full(GROUP_SIZE, 130)
        groups = compress_exponents(exps)
        assert len(groups) == 1
        assert groups[0].precision == 0
        assert groups[0].bits == HEADER_BITS + BASE_BITS

    def test_roundtrip_exact(self, rng):
        exps = rng.integers(100, 140, 256)
        groups = compress_exponents(exps)
        back = decompress_exponents(groups, 256)
        assert np.array_equal(back, exps)

    def test_roundtrip_with_escape(self, rng):
        exps = rng.integers(0, 256, 256)  # wild spread: groups escape
        groups = compress_exponents(exps)
        back = decompress_exponents(groups, 256)
        assert np.array_equal(back, exps)

    def test_partial_group_padding(self, rng):
        exps = rng.integers(120, 130, 40)  # not a multiple of 32
        groups = compress_exponents(exps)
        back = decompress_exponents(groups, 40)
        assert np.array_equal(back, exps)

    def test_empty(self):
        assert compress_exponents(np.zeros(0, dtype=np.int64)) == []
        assert decompress_exponents([], 0).size == 0

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, exps):
        arr = np.asarray(exps, dtype=np.int64)
        back = decompress_exponents(compress_exponents(arr), arr.size)
        assert np.array_equal(back, arr)


class TestZeroMask:
    def test_zero_values_do_not_widen(self):
        """A group of similar exponents plus zero values must compress
        as if the zeros were absent."""
        exps = np.full(GROUP_SIZE, 125)
        exps[::4] = 0  # zero values carry exponent field 0
        mask = exps == 0
        with_mask = exponent_footprint_bits(exps, mask)
        without = exponent_footprint_bits(exps, None)
        assert with_mask == HEADER_BITS + BASE_BITS  # width 0
        assert without > with_mask  # unmasked zeros force an escape

    def test_nonzero_positions_roundtrip(self, rng):
        exps = rng.integers(110, 126, 64)
        mask = rng.random(64) < 0.5
        exps = np.where(mask, 0, exps)
        groups = compress_exponents(exps, mask)
        back = decompress_exponents(groups, 64)
        assert np.array_equal(back[~mask], exps[~mask])

    def test_all_zero_group(self):
        exps = np.zeros(GROUP_SIZE, dtype=np.int64)
        groups = compress_exponents(exps, np.ones(GROUP_SIZE, dtype=bool))
        assert groups[0].precision == 0

    def test_mask_size_validation(self):
        with pytest.raises(ValueError):
            compress_exponents(np.zeros(8, dtype=np.int64), np.zeros(4, dtype=bool))


class TestWidths:
    def test_delta_within_precision(self, rng):
        exps = rng.integers(100, 140, 512)
        for group in compress_exponents(exps):
            if group.precision >= RAW_EXP_BITS:
                continue
            width = group.precision
            if width == 0:
                assert np.all(group.deltas == 0)
            else:
                lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
                assert group.deltas.min() >= lo
                assert group.deltas.max() <= hi

    def test_escape_when_wide(self):
        exps = np.zeros(GROUP_SIZE, dtype=np.int64)
        exps[1] = 255
        group = compress_exponents(exps)[0]
        assert group.precision == RAW_EXP_BITS
        assert group.bits == HEADER_BITS + BASE_BITS + GROUP_SIZE * RAW_EXP_BITS

    def test_never_worse_than_raw_plus_header(self, rng):
        exps = rng.integers(0, 256, 4096)
        bits = exponent_footprint_bits(exps)
        raw = 4096 * RAW_EXP_BITS
        overhead = (4096 // GROUP_SIZE) * (HEADER_BITS + BASE_BITS)
        assert bits <= raw + overhead


class TestCompressionSummary:
    def test_correlated_stream_compresses_well(self, rng):
        """Clustered exponents (the training-tensor case) compress far
        better than white noise."""
        clustered = bf16_quantize(rng.normal(0, 1, 8192) * 0.5)
        wild = bf16_quantize(
            rng.normal(0, 1, 8192) * 2.0 ** rng.integers(-60, 60, 8192)
        )
        tight = compression_summary(clustered)
        loose = compression_summary(wild)
        assert tight.exponent_ratio < loose.exponent_ratio
        assert tight.exponent_ratio < 0.75

    def test_total_ratio_bounds(self, rng):
        values = bf16_quantize(rng.normal(0, 1, 4096))
        summary = compression_summary(values)
        assert 0.5 < summary.total_ratio <= 1.1
        assert summary.bytes_raw == 8192.0

    def test_compress_tensor_bytes(self, rng):
        values = bf16_quantize(rng.normal(0, 1, 1024))
        assert compress_tensor_bytes(values) == compression_summary(values).bytes_compressed

    def test_sparse_tensor_not_penalized(self, rng):
        """Zeros must not destroy compression (their exponent bytes are
        don't-cares)."""
        dense = bf16_quantize(rng.normal(0, 1, 8192) * 0.5)
        sparse = dense.copy()
        sparse[rng.random(8192) < 0.5] = 0.0
        assert (
            compression_summary(sparse).exponent_ratio
            <= compression_summary(dense).exponent_ratio + 0.05
        )


class TestBitstream:
    def test_pack_unpack_roundtrip(self, rng):
        from repro.compression.base_delta import pack_groups, unpack_groups

        exps = rng.integers(100, 140, 256)
        groups = compress_exponents(exps)
        data = pack_groups(groups)
        back = unpack_groups(data, len(groups))
        restored = decompress_exponents(back, 256)
        assert np.array_equal(restored, exps)

    def test_pack_unpack_with_raw_escape(self, rng):
        from repro.compression.base_delta import pack_groups, unpack_groups

        exps = rng.integers(0, 256, 128)  # forces raw groups
        groups = compress_exponents(exps)
        data = pack_groups(groups)
        restored = decompress_exponents(unpack_groups(data, len(groups)), 128)
        assert np.array_equal(restored, exps)

    def test_stream_size_matches_bit_accounting(self, rng):
        from repro.compression.base_delta import pack_groups

        exps = rng.integers(110, 135, 1024)
        groups = compress_exponents(exps)
        # The serializer spends one extra header bit per group vs the
        # 3-bit hardware field; otherwise sizes must agree.
        accounted_bits = sum(g.bits for g in groups) + len(groups)
        data = pack_groups(groups)
        assert len(data) == -(-accounted_bits // 8)

    def test_compression_is_physically_real(self, rng):
        """The packed stream of a training-like tensor is genuinely
        smaller than the raw exponent bytes."""
        from repro.compression.base_delta import pack_groups
        from repro.traces.calibration import get_calibration
        from repro.traces.synthetic import generate_tensor

        values = generate_tensor(
            get_calibration("VGG16").activations, 32 * 256, rng
        )
        exps = exponent_fields(values)
        groups = compress_exponents(exps, values == 0.0)
        data = pack_groups(groups)
        assert len(data) < 0.7 * exps.size  # raw would be exps.size bytes
