"""Tests for canonical signed-digit encoding and its lookup tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.booth import (
    csd_decode,
    csd_encode,
    partial_csd_sum,
    term_count,
    term_positions,
    term_sparsity,
    terms_of_value,
    value_sparsity,
)
from repro.encoding.terms import MAX_TERMS, TERM_SLOTS, Term
from repro.fp.bfloat16 import bf16_quantize


class TestCsdEncode:
    def test_zero(self):
        assert csd_encode(0) == []

    def test_power_of_two(self):
        terms = csd_encode(128)
        assert terms == [Term(power=7, sign=1)]

    def test_paper_style_example(self):
        # 1.875 * 128 = 240 = 0b11110000 -> CSD: +2^8 - 2^4.
        terms = csd_encode(240)
        assert terms == [Term(power=8, sign=1), Term(power=4, sign=-1)]

    def test_roundtrip_exhaustive(self):
        for v in range(512):
            assert csd_decode(csd_encode(v)) == v

    def test_nonadjacency_exhaustive(self):
        """Canonical form: no two adjacent nonzero digits."""
        for v in range(512):
            powers = [t.power for t in csd_encode(v)]
            assert all(a - b >= 2 for a, b in zip(powers, powers[1:]))

    def test_msb_first_order(self):
        for v in range(256):
            powers = [t.power for t in csd_encode(v)]
            assert powers == sorted(powers, reverse=True)

    def test_max_terms_bound(self):
        assert max(len(csd_encode(v)) for v in range(256)) == MAX_TERMS

    def test_minimality_vs_binary(self):
        """CSD never uses more nonzero digits than plain binary."""
        for v in range(256):
            assert len(csd_encode(v)) <= bin(v).count("1")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            csd_encode(-1)

    @given(st.integers(0, 10**6))
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_large(self, v):
        assert csd_decode(csd_encode(v)) == v


class TestTermsOfValue:
    def test_zero_has_no_terms(self):
        assert terms_of_value(0.0) == []

    def test_one(self):
        # 1.0 -> significand 128 -> single term 2^7 (value 2^0).
        terms = terms_of_value(1.0)
        assert len(terms) == 1
        assert terms[0].exponent_offset == 0

    def test_terms_reconstruct_significand(self, rng):
        values = bf16_quantize(rng.normal(0, 4, 200))
        for x in values:
            if x == 0.0:
                continue
            total = sum(t.value() for t in terms_of_value(x))
            _, exp = np.frexp(abs(x))
            assert total * 2.0 ** (int(exp) - 1) == abs(x)


class TestVectorizedLuts:
    def test_term_count_matches_scalar(self, bf16_vector):
        counts = term_count(bf16_vector)
        for x, c in zip(bf16_vector, counts):
            assert c == len(terms_of_value(float(x)))

    def test_term_positions_match_scalar(self, bf16_vector):
        count, power, sign = term_positions(bf16_vector)
        for i, x in enumerate(bf16_vector):
            terms = terms_of_value(float(x))
            assert count[i] == len(terms)
            for j, t in enumerate(terms):
                assert power[i, j] == t.power
                assert sign[i, j] == t.sign
            # Padding past count is blanked.
            assert np.all(power[i, count[i] :] == -1)
            assert np.all(sign[i, count[i] :] == 0)

    def test_shapes(self, rng):
        values = bf16_quantize(rng.normal(0, 1, (4, 5)))
        count, power, sign = term_positions(values)
        assert count.shape == (4, 5)
        assert power.shape == (4, 5, MAX_TERMS)


class TestPartialCsdSum:
    def test_full_cutoff_reconstructs(self):
        for v in range(256):
            assert partial_csd_sum(np.array([v]), np.array([0]))[0] == v

    def test_everything_dropped(self):
        for v in range(0, 256, 17):
            assert partial_csd_sum(np.array([v]), np.array([10]))[0] == 0

    def test_matches_bruteforce_exhaustive(self):
        for v in range(256):
            terms = csd_encode(v)
            for pmin in range(11):
                expected = sum(
                    t.sign * (1 << t.power) for t in terms if t.power >= pmin
                )
                assert partial_csd_sum(np.array([v]), np.array([pmin]))[0] == expected

    def test_cutoff_clipping(self):
        assert partial_csd_sum(np.array([255]), np.array([-5]))[0] == 255
        assert partial_csd_sum(np.array([255]), np.array([99]))[0] == 0

    def test_partial_error_bounded(self):
        """Dropping terms below pmin perturbs by less than 2^pmin * 4/3."""
        for v in range(256):
            for pmin in range(9):
                kept = partial_csd_sum(np.array([v]), np.array([pmin]))[0]
                assert abs(int(kept) - v) < (1 << pmin) * 2


class TestSparsityMetrics:
    def test_term_sparsity_all_zero(self):
        assert term_sparsity(np.zeros(10)) == 1.0

    def test_term_sparsity_range(self, bf16_vector):
        ts = term_sparsity(bf16_vector)
        assert 0.0 <= ts <= 1.0

    def test_term_sparsity_math(self):
        # A single value 1.0 has 1 term out of 8 slots.
        assert term_sparsity(np.array([1.0])) == 1.0 - 1.0 / TERM_SLOTS

    def test_value_sparsity(self):
        assert value_sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5

    def test_empty(self):
        assert term_sparsity(np.zeros(0)) == 0.0
        assert value_sparsity(np.zeros(0)) == 0.0
