"""docs/CLI.md is generated -- fail the build when it drifts."""

from repro.harness.clidoc import doc_path, render_cli_doc


def test_cli_doc_exists():
    assert doc_path().exists(), (
        "docs/CLI.md is missing; generate it with "
        "`python -m repro.harness.clidoc --write`"
    )


def test_cli_doc_in_sync():
    committed = doc_path().read_text()
    assert committed == render_cli_doc(), (
        "docs/CLI.md no longer matches the argparse tree; regenerate "
        "with `python -m repro.harness.clidoc --write`"
    )


def test_every_experiment_listed():
    from repro.__main__ import EXPERIMENTS

    text = doc_path().read_text()
    for name in EXPERIMENTS:
        assert f"- `{name}`" in text


def test_render_is_deterministic():
    assert render_cli_doc() == render_cli_doc()


def test_check_mode_detects_drift(tmp_path, monkeypatch, capsys):
    from repro.harness import clidoc

    stale = tmp_path / "CLI.md"
    stale.write_text("# stale\n")
    monkeypatch.setattr(clidoc, "doc_path", lambda: stale)
    assert clidoc.main(["--check"]) == 1
    assert clidoc.main(["--write"]) == 0
    assert clidoc.main(["--check"]) == 0
