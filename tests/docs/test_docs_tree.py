"""Markdown lint + internal-link check over the docs tree.

Keeps README.md and docs/*.md from rotting: every relative link must
resolve to a real file (and, for ``#fragment`` links, to a real heading
anchor), each document carries exactly one H1, and code fences are
balanced.  External (``http``) links are not fetched.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOCS = sorted(
    [ROOT / "README.md", *(ROOT / "docs").glob("*.md")],
    key=lambda p: p.as_posix(),
)

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


def _strip_fences(text: str) -> str:
    """Drop fenced code blocks (their content is not markdown)."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor slug of a heading text."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {
        _anchor_of(match.group(2))
        for match in map(
            HEADING_RE.match, _strip_fences(path.read_text()).splitlines()
        )
        if match
    }


def _links(path: Path):
    return LINK_RE.findall(_strip_fences(path.read_text()))


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_exists_and_nonempty(doc):
    assert doc.exists() and doc.read_text().strip()


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_single_h1(doc):
    h1s = [
        line
        for line in _strip_fences(doc.read_text()).splitlines()
        if line.startswith("# ")
    ]
    assert len(h1s) == 1, f"{doc.name} has {len(h1s)} H1 headings: {h1s}"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_code_fences_balanced(doc):
    fences = sum(
        1
        for line in doc.read_text().splitlines()
        if line.lstrip().startswith("```")
    )
    assert fences % 2 == 0, f"{doc.name} has an unclosed code fence"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_internal_links_resolve(doc):
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            doc if not path_part else (doc.parent / path_part).resolve()
        )
        assert resolved.exists(), (
            f"{doc.name}: broken link target {target!r}"
        )
        if fragment and resolved.suffix == ".md":
            assert fragment in _anchors(resolved), (
                f"{doc.name}: link {target!r} points at a missing "
                f"anchor (known: {sorted(_anchors(resolved))})"
            )


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_no_trailing_whitespace_rot(doc):
    offenders = [
        i + 1
        for i, line in enumerate(doc.read_text().splitlines())
        if line != line.rstrip()
    ]
    assert not offenders, f"{doc.name}: trailing whitespace on {offenders}"


def test_architecture_names_real_modules():
    """ARCHITECTURE.md's module map matches the actual source tree."""
    text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    for package in ("core", "memory", "traces", "harness", "scale"):
        assert f"`{package}/`" in text
        assert (ROOT / "src" / "repro" / package).is_dir()
