"""Docstring-coverage gate over the public simulation APIs.

Since PR 7 the walker lives in the lint framework as rule RPR006
(``repro.lint.rules.docstrings``); this suite drives the same code
through its legacy :func:`coverage_report` entry point to keep the
original PR 6 contract explicit: every covered package stays at or
above the threshold, and ``repro.scale`` stays at 100%.  The lint
rule itself is exercised per-file by ``tests/lint`` and across the
whole tree by the ``repro lint src/repro`` self-lint test.
"""

from pathlib import Path

import pytest

from repro.lint.rules.docstrings import COVERED_PACKAGES, coverage_report

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

FAIL_UNDER = 0.90


@pytest.mark.parametrize("package", COVERED_PACKAGES)
def test_package_docstring_coverage(package):
    documented, missing = coverage_report(package, SRC)
    total = len(documented) + len(missing)
    assert total > 0
    coverage = len(documented) / total
    assert coverage >= FAIL_UNDER, (
        f"repro.{package} docstring coverage {coverage:.1%} is below "
        f"{FAIL_UNDER:.0%}; undocumented: {missing}"
    )


def test_covered_packages_are_the_documented_three():
    """The gate's scope is part of the contract, not an implementation
    detail -- widening or narrowing it should be a conscious edit."""
    assert COVERED_PACKAGES == ("core", "memory", "scale")


def test_scale_package_fully_documented():
    """The new package starts at 100% -- keep it there."""
    _, missing = coverage_report("scale", SRC)
    assert missing == []


def test_gate_counts_real_objects():
    """Sanity: the walker sees a representative object set."""
    documented, missing = coverage_report("core", SRC)
    names = documented + missing
    assert any("accelerator.py:AcceleratorSimulator" in n for n in names)
    assert any("workload.py:PhaseWorkload" in n for n in names)
