"""Docstring-coverage gate over the public simulation APIs.

The container has no third-party coverage tool, so the gate is a small
``ast`` walk: every public module, class, and function/method in the
covered packages counts as one documentable object, and the suite fails
when the documented fraction drops below the threshold -- the same
contract `interrogate --fail-under` would enforce.  Private names
(leading underscore) and trivial overrides are exempt.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# Packages whose public APIs must stay documented, and the floor.
COVERED_PACKAGES = ("core", "memory", "scale")
FAIL_UNDER = 0.90

# Dunder methods that never need their own docstring.
EXEMPT = {"__init__", "__post_init__", "__repr__", "__str__", "__eq__"}


def _documentable(node) -> bool:
    """Whether a def/class node is part of the public API."""
    name = node.name
    if name.startswith("_") and name not in EXEMPT:
        return False
    return name not in EXEMPT


def _walk_module(path: Path):
    """Yield ``(qualname, has_docstring)`` for a module's public API."""
    tree = ast.parse(path.read_text())
    yield f"{path.name}", ast.get_docstring(tree) is not None

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not _documentable(child):
                    continue
                qualname = f"{prefix}{child.name}"
                yield qualname, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, f"{qualname}.")

    yield from visit(tree, f"{path.name}:")


def _package_report(package: str):
    """(documented, missing) object lists of one package."""
    documented, missing = [], []
    for path in sorted((SRC / package).rglob("*.py")):
        for qualname, has_doc in _walk_module(path):
            (documented if has_doc else missing).append(
                f"{package}/{qualname}"
            )
    return documented, missing


@pytest.mark.parametrize("package", COVERED_PACKAGES)
def test_package_docstring_coverage(package):
    documented, missing = _package_report(package)
    total = len(documented) + len(missing)
    assert total > 0
    coverage = len(documented) / total
    assert coverage >= FAIL_UNDER, (
        f"repro.{package} docstring coverage {coverage:.1%} is below "
        f"{FAIL_UNDER:.0%}; undocumented: {missing}"
    )


def test_scale_package_fully_documented():
    """The new package starts at 100% -- keep it there."""
    _, missing = _package_report("scale")
    assert missing == []


def test_gate_counts_real_objects():
    """Sanity: the walker sees a representative object set."""
    documented, missing = _package_report("core")
    names = documented + missing
    assert any("accelerator.py:AcceleratorSimulator" in n for n in names)
    assert any("workload.py:PhaseWorkload" in n for n in names)
